//! Reachability analysis of (watermarked) state machines.
//!
//! The stealth of an FSM watermark rests on its states being invisible to
//! anyone who doesn't hold the key: they *are* reachable (the key reaches
//! them), but only through input words an attacker has no reason to apply.
//! These queries quantify that: full reachability (attacker with the
//! netlist), functional reachability (attacker observing normal
//! operation), and the watermark's exposure = the difference.

use crate::{Fsm, FsmError, StateId, Symbol};
use std::collections::VecDeque;

/// States reachable from reset using *any* input symbols (an attacker who
/// can drive the inputs exhaustively).
///
/// # Errors
///
/// Currently infallible for a well-formed machine; the `Result` mirrors
/// the other queries.
pub fn reachable_states(fsm: &Fsm) -> Result<Vec<StateId>, FsmError> {
    reachable_with(fsm, |_, _| true)
}

/// States reachable from reset using only the given input symbols (an
/// attacker limited to a functional stimulus set).
///
/// # Errors
///
/// Returns [`FsmError::UnknownSymbol`] when `allowed` contains symbols
/// outside the alphabet.
pub fn functionally_reachable_states(
    fsm: &Fsm,
    allowed: &[Symbol],
) -> Result<Vec<StateId>, FsmError> {
    for &symbol in allowed {
        if symbol >= fsm.input_count() {
            return Err(FsmError::UnknownSymbol {
                symbol,
                alphabet: fsm.input_count(),
            });
        }
    }
    reachable_with(fsm, |_, input| allowed.contains(&input))
}

fn reachable_with(
    fsm: &Fsm,
    permit: impl Fn(StateId, Symbol) -> bool,
) -> Result<Vec<StateId>, FsmError> {
    let mut seen = vec![false; fsm.state_count() as usize];
    let mut queue = VecDeque::from([0u32]);
    seen[0] = true;
    while let Some(state) = queue.pop_front() {
        for input in 0..fsm.input_count() {
            if !permit(state, input) {
                continue;
            }
            if let Some((next, _)) = fsm.transition(state, input)? {
                if !seen[next as usize] {
                    seen[next as usize] = true;
                    queue.push_back(next);
                }
            }
        }
    }
    Ok((0..fsm.state_count())
        .filter(|&s| seen[s as usize])
        .collect())
}

/// The watermark-exposure report of a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExposureReport {
    /// States reachable with arbitrary inputs.
    pub reachable: Vec<StateId>,
    /// States reachable with the functional stimulus set only.
    pub functionally_reachable: Vec<StateId>,
}

impl ExposureReport {
    /// States only an out-of-band stimulus (like the key) can reach —
    /// where the watermark hides.
    pub fn hidden_states(&self) -> Vec<StateId> {
        self.reachable
            .iter()
            .copied()
            .filter(|s| !self.functionally_reachable.contains(s))
            .collect()
    }
}

/// Computes both reachability sets at once.
///
/// # Errors
///
/// Returns [`FsmError::UnknownSymbol`] for out-of-alphabet entries in
/// `functional_inputs`.
pub fn exposure(fsm: &Fsm, functional_inputs: &[Symbol]) -> Result<ExposureReport, FsmError> {
    Ok(ExposureReport {
        reachable: reachable_states(fsm)?,
        functionally_reachable: functionally_reachable_states(fsm, functional_inputs)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed_signature, Key};

    fn controller() -> Fsm {
        let mut fsm = Fsm::new(4, 4, 4).expect("valid dims");
        for s in 0..4 {
            fsm.specify(s, 0, (s + 1) % 4, s as u8).expect("fresh");
            fsm.specify(s, 1, 0, 3).expect("fresh");
        }
        fsm
    }

    #[test]
    fn all_functional_states_are_reachable() {
        let fsm = controller();
        assert_eq!(reachable_states(&fsm).expect("ok"), vec![0, 1, 2, 3]);
        assert_eq!(
            functionally_reachable_states(&fsm, &[0, 1]).expect("ok"),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn watermark_states_hide_from_functional_stimulus() {
        let key = Key {
            inputs: vec![2, 3, 2],
            signature: vec![1, 0, 2],
        };
        let wm = embed_signature(&controller(), &key).expect("embeds");
        let report = exposure(&wm.fsm, &[0, 1]).expect("ok");
        // The full-reachability attacker sees everything…
        assert_eq!(report.reachable.len() as u32, wm.fsm.state_count());
        // …but functional operation never enters the watermark chain.
        assert_eq!(report.hidden_states(), wm.added_states);
    }

    #[test]
    fn disconnected_states_stay_unreached() {
        let mut fsm = controller();
        let orphan = fsm.add_state();
        let reachable = reachable_states(&fsm).expect("ok");
        assert!(!reachable.contains(&orphan));
    }

    #[test]
    fn restricted_stimulus_shrinks_the_set() {
        let fsm = controller();
        // Input 1 always returns to reset, so alone it reaches nothing new.
        assert_eq!(
            functionally_reachable_states(&fsm, &[1]).expect("ok"),
            vec![0]
        );
        assert_eq!(
            functionally_reachable_states(&fsm, &[]).expect("ok"),
            vec![0]
        );
    }

    #[test]
    fn bad_symbols_are_rejected() {
        assert!(matches!(
            functionally_reachable_states(&controller(), &[9]).unwrap_err(),
            FsmError::UnknownSymbol { symbol: 9, .. }
        ));
    }
}
