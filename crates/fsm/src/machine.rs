use crate::FsmError;

/// A state index within an [`Fsm`].
pub type StateId = u32;

/// An input or output symbol (alphabets are small: up to 256 symbols).
pub type Symbol = u8;

/// A Mealy finite state machine with optionally specified transitions.
///
/// Unspecified (don't-care) transitions are the resource FSM watermarking
/// consumes: synthesis is free to map them anywhere, so assigning them a
/// secret signature path costs (almost) nothing — the "0 % area overhead"
/// of the FSM-watermarking literature.
///
/// State 0 is the reset state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    n_states: u32,
    n_inputs: u8,
    n_outputs: u8,
    /// `transitions[state * n_inputs + input]`.
    transitions: Vec<Option<(StateId, Symbol)>>,
}

impl Fsm {
    /// Creates a machine with all transitions unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::EmptyMachine`] when any dimension is zero.
    pub fn new(n_states: u32, n_inputs: u8, n_outputs: u8) -> Result<Self, FsmError> {
        if n_states == 0 || n_inputs == 0 || n_outputs == 0 {
            return Err(FsmError::EmptyMachine);
        }
        Ok(Fsm {
            n_states,
            n_inputs,
            n_outputs,
            transitions: vec![None; n_states as usize * n_inputs as usize],
        })
    }

    /// Number of states.
    pub fn state_count(&self) -> u32 {
        self.n_states
    }

    /// Input alphabet size.
    pub fn input_count(&self) -> u8 {
        self.n_inputs
    }

    /// Output alphabet size.
    pub fn output_count(&self) -> u8 {
        self.n_outputs
    }

    /// State registers a one-hot-free (binary) encoding needs.
    pub fn state_registers(&self) -> u32 {
        32 - self.n_states.max(2).next_power_of_two().leading_zeros() - 1
    }

    fn index(&self, state: StateId, input: Symbol) -> Result<usize, FsmError> {
        if state >= self.n_states {
            return Err(FsmError::UnknownState { state });
        }
        if input >= self.n_inputs {
            return Err(FsmError::UnknownSymbol {
                symbol: input,
                alphabet: self.n_inputs,
            });
        }
        Ok(state as usize * self.n_inputs as usize + input as usize)
    }

    /// Specifies the transition `(state, input) → (next, output)`.
    ///
    /// # Errors
    ///
    /// Returns range errors for any out-of-bounds argument and
    /// [`FsmError::AlreadySpecified`] when the transition exists.
    pub fn specify(
        &mut self,
        state: StateId,
        input: Symbol,
        next: StateId,
        output: Symbol,
    ) -> Result<(), FsmError> {
        if next >= self.n_states {
            return Err(FsmError::UnknownState { state: next });
        }
        if output >= self.n_outputs {
            return Err(FsmError::UnknownSymbol {
                symbol: output,
                alphabet: self.n_outputs,
            });
        }
        let idx = self.index(state, input)?;
        if self.transitions[idx].is_some() {
            return Err(FsmError::AlreadySpecified { state, input });
        }
        self.transitions[idx] = Some((next, output));
        Ok(())
    }

    /// The transition for `(state, input)`, if specified.
    ///
    /// # Errors
    ///
    /// Returns range errors for out-of-bounds arguments.
    pub fn transition(
        &self,
        state: StateId,
        input: Symbol,
    ) -> Result<Option<(StateId, Symbol)>, FsmError> {
        Ok(self.transitions[self.index(state, input)?])
    }

    /// Number of specified transitions.
    pub fn specified_count(&self) -> usize {
        self.transitions.iter().flatten().count()
    }

    /// Unspecified `(state, input)` pairs — the don't-care space a
    /// watermark can claim.
    pub fn unspecified(&self) -> Vec<(StateId, Symbol)> {
        let mut free = Vec::new();
        for state in 0..self.n_states {
            for input in 0..self.n_inputs {
                let idx = state as usize * self.n_inputs as usize + input as usize;
                if self.transitions[idx].is_none() {
                    free.push((state, input));
                }
            }
        }
        free
    }

    /// Grows the machine by one fresh state, returning its id.
    pub fn add_state(&mut self) -> StateId {
        self.n_states += 1;
        self.transitions
            .extend(std::iter::repeat_n(None, self.n_inputs as usize));
        self.n_states - 1
    }

    /// Runs the machine from reset over an input word, collecting outputs.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::Unspecified`] when an input hits a don't-care
    /// (real hardware would do *something*; the model flags it so tests
    /// can prove functional preservation) and range errors for bad
    /// symbols.
    pub fn run(&self, inputs: &[Symbol]) -> Result<Vec<Symbol>, FsmError> {
        let mut state: StateId = 0;
        let mut outputs = Vec::with_capacity(inputs.len());
        for &input in inputs {
            match self.transition(state, input)? {
                Some((next, output)) => {
                    outputs.push(output);
                    state = next;
                }
                None => return Err(FsmError::Unspecified { state, input }),
            }
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring(n: u32) -> Fsm {
        let mut fsm = Fsm::new(n, 2, 2).expect("valid dims");
        for s in 0..n {
            fsm.specify(s, 0, (s + 1) % n, (s % 2) as u8)
                .expect("fresh");
        }
        fsm
    }

    #[test]
    fn construction_validation() {
        assert_eq!(Fsm::new(0, 2, 2).unwrap_err(), FsmError::EmptyMachine);
        assert_eq!(Fsm::new(2, 0, 2).unwrap_err(), FsmError::EmptyMachine);
        assert_eq!(Fsm::new(2, 2, 0).unwrap_err(), FsmError::EmptyMachine);
    }

    #[test]
    fn specify_and_run_a_ring_counter() {
        let fsm = ring(4);
        let out = fsm.run(&[0, 0, 0, 0, 0]).expect("specified");
        assert_eq!(out, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn double_specification_is_rejected() {
        let mut fsm = ring(3);
        assert_eq!(
            fsm.specify(0, 0, 1, 0).unwrap_err(),
            FsmError::AlreadySpecified { state: 0, input: 0 }
        );
    }

    #[test]
    fn out_of_range_arguments_are_rejected() {
        let mut fsm = Fsm::new(2, 2, 2).expect("valid");
        assert!(matches!(
            fsm.specify(5, 0, 0, 0),
            Err(FsmError::UnknownState { state: 5 })
        ));
        assert!(matches!(
            fsm.specify(0, 5, 0, 0),
            Err(FsmError::UnknownSymbol { .. })
        ));
        assert!(matches!(
            fsm.specify(0, 0, 5, 0),
            Err(FsmError::UnknownState { state: 5 })
        ));
        assert!(matches!(
            fsm.specify(0, 0, 0, 5),
            Err(FsmError::UnknownSymbol { .. })
        ));
        assert!(fsm.run(&[7]).is_err());
    }

    #[test]
    fn unspecified_transition_stops_the_run() {
        let fsm = ring(3);
        assert_eq!(
            fsm.run(&[0, 1]).unwrap_err(),
            FsmError::Unspecified { state: 1, input: 1 }
        );
    }

    #[test]
    fn unspecified_enumeration_matches_counts() {
        let fsm = ring(3);
        assert_eq!(fsm.specified_count(), 3);
        assert_eq!(fsm.unspecified().len(), 3); // input 1 from every state
        assert!(fsm.unspecified().iter().all(|&(_, i)| i == 1));
    }

    #[test]
    fn add_state_grows_the_machine() {
        let mut fsm = ring(3);
        let s = fsm.add_state();
        assert_eq!(s, 3);
        assert_eq!(fsm.state_count(), 4);
        assert_eq!(fsm.transition(s, 0).expect("in range"), None);
    }

    #[test]
    fn state_register_accounting() {
        assert_eq!(Fsm::new(2, 1, 1).expect("valid").state_registers(), 1);
        assert_eq!(Fsm::new(4, 1, 1).expect("valid").state_registers(), 2);
        assert_eq!(Fsm::new(5, 1, 1).expect("valid").state_registers(), 3);
        assert_eq!(Fsm::new(16, 1, 1).expect("valid").state_registers(), 4);
        assert_eq!(Fsm::new(17, 1, 1).expect("valid").state_registers(), 5);
    }

    proptest! {
        #[test]
        fn runs_are_deterministic(n in 2u32..10, inputs in proptest::collection::vec(0u8..1, 0..50)) {
            let fsm = ring(n);
            let a = fsm.run(&inputs).expect("input 0 always specified");
            let b = fsm.run(&inputs).expect("input 0 always specified");
            prop_assert_eq!(a, b);
        }

        #[test]
        fn specified_plus_unspecified_is_total(n in 1u32..10, i in 1u8..6) {
            let fsm = Fsm::new(n, i, 2).expect("valid");
            prop_assert_eq!(
                fsm.specified_count() + fsm.unspecified().len(),
                n as usize * i as usize
            );
        }
    }
}
